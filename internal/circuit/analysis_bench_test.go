package circuit

import (
	"fmt"
	"testing"
)

// brickwork builds the scheduler-shaped workload for the analysis
// benchmarks: `layers` rounds of single-qubit rotations followed by
// even/odd nearest-neighbor entanglers — the structure of Ising/QGAN/XEB
// circuits after routing.
func brickwork(n, layers int) *Circuit {
	c := New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RX(q, 0.3)
		}
		for parity := 0; parity < 2; parity++ {
			for q := parity; q+1 < n; q += 2 {
				c.CZ(q, q+1)
			}
		}
	}
	return c
}

// BenchmarkCircuitAnalysis measures Analyze — the one-time cost every
// strategy used to pay per compile (ASAP layers + criticality + per-qubit
// streams) and now pays once per circuit through the compile cache.
func BenchmarkCircuitAnalysis(b *testing.B) {
	for _, size := range []struct{ n, layers int }{{16, 16}, {81, 20}} {
		c := brickwork(size.n, size.layers)
		b.Run(fmt.Sprintf("brickwork-%dq-%dl", size.n, size.layers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Analyze(c)
			}
		})
	}
}

// BenchmarkFrontier measures a full dependency-ordered drain of a circuit
// through the CSR frontier — the inner loop of every scheduling strategy.
// allocs/op is the headline number: the map-based Ready() allocated a map
// plus a slice per round; the view over the Analysis allocates nothing in
// steady state.
func BenchmarkFrontier(b *testing.B) {
	for _, size := range []struct{ n, layers int }{{16, 16}, {81, 20}} {
		c := brickwork(size.n, size.layers)
		a := Analyze(c)
		b.Run(fmt.Sprintf("drain-%dq-%dl", size.n, size.layers), func(b *testing.B) {
			f := a.NewFrontier()
			defer f.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Reset()
				for !f.Done() {
					for _, idx := range f.Ready() {
						f.Issue(idx)
					}
				}
			}
		})
	}
}
