package phys

import "math"

// jacobiEigen diagonalizes a real symmetric n×n matrix with the classical
// cyclic Jacobi rotation method. It returns the eigenvalues and the matrix
// of column eigenvectors v (a[i][j] = Σ_k v[i][k]·λ[k]·v[j][k]). For the
// 9×9 two-transmon Hamiltonian it converges in a handful of sweeps and lets
// us evolve states exactly (unitarily to machine precision) instead of
// integrating numerically.
func jacobiEigen(a [][]float64) (values []float64, vectors [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		copy(m[i], a[i])
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to m (rows/cols p, q).
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m[i][i]
	}
	return values, v
}
