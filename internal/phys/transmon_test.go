package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func testTransmon() Transmon {
	return Transmon{OmegaMax: 7.0, EC: 0.2, Asymmetry: 0.48, T1: 30000, T2: 20000}
}

func TestFreq01AtSweetSpots(t *testing.T) {
	tr := testTransmon()
	if got := tr.Freq01(0); math.Abs(got-7.0) > 1e-9 {
		t.Fatalf("Freq01(0) = %v, want OmegaMax=7.0", got)
	}
	min := tr.OmegaMin()
	if min >= tr.OmegaMax {
		t.Fatalf("OmegaMin %v not below OmegaMax", min)
	}
	if min < 3.5 || min > 6.0 {
		t.Fatalf("OmegaMin %v outside plausible band for d=0.48", min)
	}
}

func TestFreq01MonotoneOnHalfPeriod(t *testing.T) {
	tr := testTransmon()
	prev := tr.Freq01(0)
	for i := 1; i <= 50; i++ {
		phi := 0.5 * float64(i) / 50
		f := tr.Freq01(phi)
		if f > prev+1e-12 {
			t.Fatalf("Freq01 not decreasing at phi=%v: %v > %v", phi, f, prev)
		}
		prev = f
	}
}

func TestFreq01Symmetry(t *testing.T) {
	tr := testTransmon()
	for _, phi := range []float64{0.1, 0.25, 0.4} {
		if d := math.Abs(tr.Freq01(phi) - tr.Freq01(-phi)); d > 1e-9 {
			t.Fatalf("Freq01 not symmetric in flux at phi=%v (diff %v)", phi, d)
		}
	}
}

func TestFreq12BelowFreq01(t *testing.T) {
	tr := testTransmon()
	for _, phi := range []float64{0, 0.2, 0.5} {
		w01, w12 := tr.Freq01(phi), tr.Freq12(phi)
		if math.Abs((w01-w12)-tr.EC) > 1e-9 {
			t.Fatalf("w01-w12 = %v, want EC=%v", w01-w12, tr.EC)
		}
	}
}

func TestAnharmonicityNegative(t *testing.T) {
	tr := testTransmon()
	if a := tr.Anharmonicity(); a != -0.2 {
		t.Fatalf("Anharmonicity = %v, want -0.2", a)
	}
}

func TestFluxSensitivityVanishesAtSweetSpots(t *testing.T) {
	tr := testTransmon()
	sens0 := tr.FluxSensitivity(0)
	sensHalf := tr.FluxSensitivity(0.5)
	sensMid := tr.FluxSensitivity(0.25)
	if sens0 > 1e-3 || sensHalf > 1e-3 {
		t.Fatalf("sensitivity at sweet spots = %v, %v; want ~0", sens0, sensHalf)
	}
	if sensMid < 10*sens0 || sensMid < 1.0 {
		t.Fatalf("mid-band sensitivity %v should dominate sweet spots", sensMid)
	}
}

func TestFluxForRoundTrip(t *testing.T) {
	tr := testTransmon()
	lo, hi := tr.TunableRange()
	for i := 0; i <= 10; i++ {
		target := lo + (hi-lo)*float64(i)/10
		phi, err := tr.FluxFor(target)
		if err != nil {
			t.Fatalf("FluxFor(%v): %v", target, err)
		}
		if got := tr.Freq01(phi); math.Abs(got-target) > 1e-6 {
			t.Fatalf("round trip: Freq01(FluxFor(%v)) = %v", target, got)
		}
	}
}

func TestFluxForOutOfRange(t *testing.T) {
	tr := testTransmon()
	if _, err := tr.FluxFor(tr.OmegaMax + 1); err == nil {
		t.Fatal("FluxFor above range should error")
	}
	if _, err := tr.FluxFor(tr.OmegaMin() - 1); err == nil {
		t.Fatal("FluxFor below range should error")
	}
}

func TestReaches(t *testing.T) {
	tr := testTransmon()
	if !tr.Reaches(6.0) {
		t.Fatal("should reach 6.0 GHz")
	}
	if tr.Reaches(8.0) {
		t.Fatal("should not reach 8.0 GHz")
	}
}

func TestDecoherenceError(t *testing.T) {
	tr := testTransmon()
	if e := tr.DecoherenceError(0); e != 0 {
		t.Fatalf("zero-duration error = %v", e)
	}
	if e := tr.DecoherenceError(-5); e != 0 {
		t.Fatalf("negative-duration error = %v", e)
	}
	prev := 0.0
	for _, dur := range []float64{10, 100, 1000, 10000, 100000, 1e7} {
		e := tr.DecoherenceError(dur)
		if e < prev || e < 0 || e > 1 {
			t.Fatalf("decoherence error not monotone in [0,1]: ε(%v)=%v prev=%v", dur, e, prev)
		}
		prev = e
	}
	if prev < 0.99 {
		t.Fatalf("long-time decoherence should saturate near 1, got %v", prev)
	}
}

func TestLevelEnergy(t *testing.T) {
	tr := testTransmon()
	if e := tr.LevelEnergy(0, 0); e != 0 {
		t.Fatalf("E(0) = %v", e)
	}
	if e := tr.LevelEnergy(1, 0); math.Abs(e-7.0) > 1e-9 {
		t.Fatalf("E(1) = %v, want 7.0", e)
	}
	// E(2) = 2ω + α = 14.0 − 0.2
	if e := tr.LevelEnergy(2, 0); math.Abs(e-13.8) > 1e-9 {
		t.Fatalf("E(2) = %v, want 13.8", e)
	}
}

// Property: for any asymmetry and flux, the frequency stays inside the
// tunable range and FluxFor inverts it.
func TestTransmonPropertyRange(t *testing.T) {
	prop := func(dRaw, phiRaw uint16) bool {
		d := 0.1 + 0.8*float64(dRaw)/65535
		phi := 0.5 * float64(phiRaw) / 65535
		tr := Transmon{OmegaMax: 7.0, EC: 0.2, Asymmetry: d, T1: 1, T2: 1}
		f := tr.Freq01(phi)
		lo, hi := tr.TunableRange()
		if f < lo-1e-9 || f > hi+1e-9 {
			return false
		}
		back, err := tr.FluxFor(f)
		if err != nil {
			return false
		}
		return math.Abs(tr.Freq01(back)-f) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
