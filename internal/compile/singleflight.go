package compile

import "sync"

// flightGroup deduplicates concurrent computations of the same key: the
// first caller (the leader) runs the function while every concurrent
// caller for that key blocks on the leader's WaitGroup and shares its
// result. This is the classic singleflight pattern (cf.
// golang.org/x/sync/singleflight), reimplemented here because the module
// takes no external dependencies.
//
// Errors are shared with the waiters of the in-flight call but are never
// remembered: once the leader returns, the key is forgotten and the next
// caller computes afresh. That matches Cache.Do's "errors are not
// cached" contract.
//
// Panics propagate: if fn panics, the leader's panic is re-raised in the
// leader AND in every waiter of that flight, and the key is forgotten.
// Without this, a panicking compute would strand its waiters on a
// WaitGroup that never completes — a deadlock that matters now that a
// compilation's own speculative workers (the pioneer prefetch, the
// component fan-out) race the main thread to the same keys while the
// batch engine's per-job panic guard expects the panic, not a hang.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg       sync.WaitGroup
	val      any
	err      error
	panicked any // non-nil when fn panicked; waiters re-raise it
}

// do runs fn exactly once per key among concurrent callers and returns
// its result to all of them. Callers that arrive after the in-flight
// call completes start a new one.
func (g *flightGroup) do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		if c.panicked != nil {
			panic(c.panicked)
		}
		return c.val, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.panicked = r
			}
			c.wg.Done()
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
		}()
		c.val, c.err = fn()
	}()
	if c.panicked != nil {
		panic(c.panicked)
	}
	return c.val, c.err
}
