// Package qasm reads and writes a practical subset of OpenQASM 2.0, so
// external circuits can be fed to the compiler and compiled circuits can be
// exported to other toolchains.
//
// Supported statements: the OPENQASM header, include (ignored), a single
// qreg declaration, gate applications over the supported gate set (h, x, y,
// z, s, sdg, t, tdg, sx, id, rx, ry, rz, u1, cx/CX, cz, swap, iswap,
// sqiswap), barrier (ignored), creg and measure (ignored with a warning
// list). Angle expressions understand pi, unary minus, decimal literals and
// the operators * and /.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fastsc/internal/circuit"
)

// Result carries a parsed circuit plus any statements that were skipped.
type Result struct {
	Circuit *circuit.Circuit
	// Skipped lists ignored statements (creg/measure/barrier/include).
	Skipped []string
}

// Parse reads OpenQASM source.
func Parse(src string) (*Result, error) {
	p := &parser{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		for _, stmt := range splitStatements(line) {
			if err := p.statement(stmt); err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo+1, err)
			}
		}
	}
	if p.circ == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return &Result{Circuit: p.circ, Skipped: p.skipped}, nil
}

func stripComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return s[:i]
	}
	return s
}

func splitStatements(line string) []string {
	var out []string
	for _, s := range strings.Split(line, ";") {
		s = strings.TrimSpace(s)
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

type parser struct {
	circ    *circuit.Circuit
	regName string
	skipped []string
}

func (p *parser) statement(s string) error {
	switch {
	case strings.HasPrefix(s, "OPENQASM"):
		return nil
	case strings.HasPrefix(s, "include"):
		p.skipped = append(p.skipped, s)
		return nil
	case strings.HasPrefix(s, "qreg"):
		return p.qreg(s)
	case strings.HasPrefix(s, "creg"), strings.HasPrefix(s, "measure"),
		strings.HasPrefix(s, "barrier"), strings.HasPrefix(s, "reset"):
		p.skipped = append(p.skipped, s)
		return nil
	}
	return p.gate(s)
}

func (p *parser) qreg(s string) error {
	if p.circ != nil {
		return fmt.Errorf("multiple qreg declarations (only one register supported)")
	}
	// qreg q[16]
	rest := strings.TrimSpace(strings.TrimPrefix(s, "qreg"))
	open := strings.Index(rest, "[")
	close := strings.Index(rest, "]")
	if open < 1 || close <= open {
		return fmt.Errorf("malformed qreg %q", s)
	}
	n, err := strconv.Atoi(rest[open+1 : close])
	if err != nil || n < 1 {
		return fmt.Errorf("bad register size in %q", s)
	}
	p.regName = strings.TrimSpace(rest[:open])
	p.circ = circuit.New(n)
	return nil
}

var gateKinds = map[string]circuit.Kind{
	"id": circuit.I, "x": circuit.X, "y": circuit.Y, "z": circuit.Z,
	"h": circuit.H, "s": circuit.S, "sdg": circuit.Sdg,
	"t": circuit.T, "tdg": circuit.Tdg, "sx": circuit.SX,
	"rx": circuit.RX, "ry": circuit.RY, "rz": circuit.RZ, "u1": circuit.RZ,
	"cx": circuit.CNOT, "CX": circuit.CNOT, "cnot": circuit.CNOT,
	"cz": circuit.CZ, "swap": circuit.SWAP,
	"iswap": circuit.ISwap, "sqiswap": circuit.SqrtISwap,
}

func (p *parser) gate(s string) error {
	if p.circ == nil {
		return fmt.Errorf("gate before qreg declaration")
	}
	name, theta, operands, err := splitGate(s)
	if err != nil {
		return err
	}
	kind, ok := gateKinds[name]
	if !ok {
		return fmt.Errorf("unsupported gate %q", name)
	}
	qubits := make([]int, 0, len(operands))
	for _, op := range operands {
		q, err := p.qubitIndex(op)
		if err != nil {
			return err
		}
		qubits = append(qubits, q)
	}
	want := 1
	if kind.IsTwoQubit() {
		want = 2
	}
	if len(qubits) != want {
		return fmt.Errorf("gate %s wants %d operands, got %d", name, want, len(qubits))
	}
	p.circ.Add(circuit.Gate{Kind: kind, Qubits: qubits, Theta: theta})
	return nil
}

// splitGate parses "rz(pi/2) q[3]" into name, angle and operand list.
func splitGate(s string) (name string, theta float64, operands []string, err error) {
	head := s
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		head, s = s[:i], strings.TrimSpace(s[i:])
	} else {
		return "", 0, nil, fmt.Errorf("malformed gate statement %q", s)
	}
	if open := strings.Index(head, "("); open >= 0 {
		close := strings.LastIndex(head, ")")
		if close <= open {
			return "", 0, nil, fmt.Errorf("unbalanced parentheses in %q", head)
		}
		theta, err = evalAngle(head[open+1 : close])
		if err != nil {
			return "", 0, nil, err
		}
		name = head[:open]
	} else {
		name = head
	}
	for _, op := range strings.Split(s, ",") {
		operands = append(operands, strings.TrimSpace(op))
	}
	return name, theta, operands, nil
}

func (p *parser) qubitIndex(op string) (int, error) {
	open := strings.Index(op, "[")
	close := strings.Index(op, "]")
	if open < 1 || close <= open {
		return 0, fmt.Errorf("malformed operand %q", op)
	}
	if reg := strings.TrimSpace(op[:open]); reg != p.regName {
		return 0, fmt.Errorf("unknown register %q (declared %q)", reg, p.regName)
	}
	q, err := strconv.Atoi(op[open+1 : close])
	if err != nil || q < 0 || q >= p.circ.NumQubits {
		return 0, fmt.Errorf("qubit index out of range in %q", op)
	}
	return q, nil
}

// evalAngle evaluates expressions like "pi/2", "-pi/4", "0.3", "3*pi/2".
func evalAngle(expr string) (float64, error) {
	expr = strings.ReplaceAll(expr, " ", "")
	if expr == "" {
		return 0, fmt.Errorf("empty angle")
	}
	neg := false
	if expr[0] == '-' {
		neg = true
		expr = expr[1:]
	}
	// Split on * and / left to right.
	val := 1.0
	cur := ""
	op := byte('*')
	apply := func(tok string) error {
		if tok == "" {
			return fmt.Errorf("malformed angle expression")
		}
		var v float64
		if tok == "pi" {
			v = math.Pi
		} else {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return fmt.Errorf("bad angle token %q", tok)
			}
			v = f
		}
		switch op {
		case '*':
			val *= v
		case '/':
			if v == 0 {
				return fmt.Errorf("division by zero in angle")
			}
			val /= v
		}
		return nil
	}
	for i := 0; i < len(expr); i++ {
		c := expr[i]
		if c == '*' || c == '/' {
			if err := apply(cur); err != nil {
				return 0, err
			}
			op, cur = c, ""
			continue
		}
		cur += string(c)
	}
	if err := apply(cur); err != nil {
		return 0, err
	}
	if neg {
		val = -val
	}
	return val, nil
}

var kindNames = map[circuit.Kind]string{
	circuit.I: "id", circuit.X: "x", circuit.Y: "y", circuit.Z: "z",
	circuit.H: "h", circuit.S: "s", circuit.Sdg: "sdg",
	circuit.T: "t", circuit.Tdg: "tdg", circuit.SX: "sx",
	circuit.RX: "rx", circuit.RY: "ry", circuit.RZ: "rz",
	circuit.CNOT: "cx", circuit.CZ: "cz", circuit.SWAP: "swap",
	circuit.ISwap: "iswap", circuit.SqrtISwap: "sqiswap",
}

// Write renders a circuit as OpenQASM 2.0 (with the iswap/sqiswap dialect
// extensions used by this toolbox; SY and SW are emitted as ry/rx-rz
// equivalents are NOT applied — they are unsupported and reported).
func Write(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	for _, g := range c.Gates {
		name, ok := kindNames[g.Kind]
		if !ok {
			return "", fmt.Errorf("qasm: gate kind %v has no QASM form", g.Kind)
		}
		if g.Kind.IsParametric() {
			fmt.Fprintf(&b, "%s(%.12g)", name, g.Theta)
		} else {
			b.WriteString(name)
		}
		for i, q := range g.Qubits {
			if i == 0 {
				b.WriteString(" ")
			} else {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	return b.String(), nil
}
