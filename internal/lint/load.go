package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Standalone package loading for the fastscvet driver. Two `go list`
// invocations replace golang.org/x/tools/go/packages: the first resolves
// the command-line patterns to target import paths, the second
// (-deps -export) compiles export data for every dependency into the
// build cache. Each target is then parsed and type-checked from source
// against that export data via the standard library's gc importer — the
// same pipeline go vet itself runs, minus the per-package process fan-out.

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (go list syntax),
// resolved relative to dir, and returns them ready for Analyze.
func Load(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-e", "-json=ImportPath,Error,Incomplete"}, patterns...))
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: go list %v: %s", patterns, t.Error.Err)
		}
		want[t.ImportPath] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}

	all, err := goList(dir, append([]string{"-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,ImportMap,Error,Incomplete"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var units []*listedPackage
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if want[p.ImportPath] {
			q := p
			units = append(units, &q)
		}
	}

	var pkgs []*Package
	for _, u := range units {
		if u.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", u.ImportPath, u.Error.Err)
		}
		if len(u.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the loader does not support", u.ImportPath)
		}
		var files []string
		for _, f := range u.GoFiles {
			files = append(files, filepath.Join(u.Dir, f))
		}
		pkg, err := checkFiles(u.ImportPath, files, u.ImportMap, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkFiles parses and type-checks one package whose imports resolve
// through export-data files (importMap maps source import paths to
// resolved package paths, exports maps package paths to export files).
func checkFiles(path string, filenames []string, importMap map[string]string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(p string) (io.ReadCloser, error) {
		if m, ok := importMap[p]; ok {
			p = m
		}
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}
