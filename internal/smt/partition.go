package smt

import "fmt"

// Partition splits the tunable spectrum into the three regions of §V-B4:
// a parking region for idle frequencies, an interaction region for two-qubit
// gate frequencies, and an exclusion region between them where no frequency
// is ever assigned. The exclusion gap keeps parked qubits off-resonance from
// every interaction frequency (including through the ω12 sideband).
type Partition struct {
	ParkLo, ParkHi float64 // parking region (idle frequencies)
	IntLo, IntHi   float64 // interaction region (two-qubit gates)
}

// ExclusionWidth returns the width of the forbidden region between parking
// and interaction bands.
func (p Partition) ExclusionWidth() float64 { return p.IntLo - p.ParkHi }

// Validate checks region ordering.
func (p Partition) Validate() error {
	if !(p.ParkLo < p.ParkHi && p.ParkHi < p.IntLo && p.IntLo < p.IntHi) {
		return fmt.Errorf("smt: malformed partition %+v", p)
	}
	return nil
}

// PartitionFor builds a partition inside the common tunable range [lo, hi],
// reproducing the paper's proportions ("1 GHz interaction, 0.5 GHz
// exclusion, 1 GHz parking"): 40% parking at the bottom (near the lower
// sweet spot), 20% exclusion, 40% interaction at the top (near the upper
// sweet spot — Appendix A parks idles near 5 GHz and interacts near 7 GHz).
func PartitionFor(lo, hi float64) Partition {
	span := hi - lo
	return Partition{
		ParkLo: lo,
		ParkHi: lo + 0.4*span,
		IntLo:  lo + 0.6*span,
		IntHi:  hi,
	}
}

// ParkingConfig returns the solver configuration for idle frequencies.
func (p Partition) ParkingConfig(alpha float64) Config {
	return Config{Lo: p.ParkLo, Hi: p.ParkHi, Alpha: alpha}
}

// InteractionConfig returns the solver configuration for interaction
// frequencies.
func (p Partition) InteractionConfig(alpha float64) Config {
	return Config{Lo: p.IntLo, Hi: p.IntHi, Alpha: alpha}
}
