package schedule

import (
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
	"fastsc/internal/xtalk"
)

// Naive is Baseline N (Table I): a conventional crosstalk-unaware compiler
// in the style of Qiskit's ASAP scheduler. Idle and interaction frequencies
// are separated (the partition is respected) but interaction frequencies are
// chosen per coupler with no coordination, so parallel gates on nearby
// couplers routinely collide spectrally.
type Naive struct{}

// Name implements Compiler.
func (Naive) Name() string { return "Baseline N" }

// Compile implements Compiler.
func (Naive) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	b, err := newBuilder(ctx, "Baseline N", c, sys, opts)
	if err != nil {
		return nil, err
	}
	// Uncoordinated per-coupler interaction frequency: a deterministic
	// pseudorandom hash over the full common tunable range. Models a
	// calibration that picks each pair's operating point in isolation —
	// ignoring its neighbors (so nearby gates collide spectrally) and the
	// partition discipline of §V-B4 entirely (so gates can land on parked
	// spectators or their sidebands). Coupler ids are the connectivity
	// graph's dense edge ids.
	gc := sys.Device.Coupling
	intLo, intHi := b.part.ParkLo, b.part.IntHi
	freqOf := func(e graph.Edge) float64 {
		id, _ := gc.EdgeID(e.U, e.V)
		h := uint64(id)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
		h ^= h >> 31
		h *= 0x94D049BB133111EB
		h ^= h >> 29
		frac := float64(h%(1<<20)) / (1 << 20)
		return intLo + frac*(intHi-intLo)
	}

	f := b.front
	for !f.Done() {
		ready := f.Ready() // issue everything: pure ASAP
		var events []GateEvent
		for _, idx := range ready {
			g := b.circ.Gates[idx]
			if g.Kind.IsTwoQubit() {
				e := graph.NewEdge(g.Qubits[0], g.Qubits[1])
				freq := freqOf(e)
				b.setFreq(g.Qubits[0], freq)
				b.setFreq(g.Qubits[1], freq)
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, freq), Freq: freq, Color: -1,
				})
			} else {
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, 0), Freq: b.park[g.Qubits[0]], Color: -1,
				})
			}
			f.Issue(idx)
		}
		b.emitSlice(events, 0, 0)
	}
	return b.finish(), nil
}

// Uniform is Baseline U (Table I): every two-qubit gate shares one common
// interaction frequency, so simultaneous gates on crosstalk-adjacent
// couplers are forbidden and must serialize — the strategy of
// fixed-frequency architectures (IBM, Murali et al.).
type Uniform struct{}

// Name implements Compiler.
func (Uniform) Name() string { return "Baseline U" }

// Compile implements Compiler.
func (Uniform) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	b, err := newBuilder(ctx, "Baseline U", c, sys, opts)
	if err != nil {
		return nil, err
	}
	// Prior-work serialization ([40]) is nearest-neighbor aware only:
	// gates sharing or neighboring a coupler are never simultaneous, but
	// next-neighbor (distance-2) pairs still run in parallel at the one
	// shared frequency — the residual crosstalk ColorDynamic's
	// distance-2 coloring eliminates.
	b.xg = ctx.Xtalk(sys.Device, 1)
	omega := (b.part.IntLo + b.part.IntHi) / 2

	scr := b.scr
	f := b.front
	for !f.Done() {
		ready := f.Ready()
		sortByCriticality(ready, b.crit)
		var events []GateEvent
		for _, idx := range ready {
			g := b.circ.Gates[idx]
			if g.Kind.IsTwoQubit() {
				// Serialize any pair of crosstalk-adjacent gates: with a
				// single shared frequency, spectral separation is
				// impossible, so separation must be temporal.
				if b.xg.ConflictDegree(g.Qubits[0], g.Qubits[1], scr.active) > 0 {
					continue
				}
				scr.active = append(scr.active, graph.NewEdge(g.Qubits[0], g.Qubits[1]))
				b.setFreq(g.Qubits[0], omega)
				b.setFreq(g.Qubits[1], omega)
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, omega), Freq: omega, Color: 0,
				})
			} else {
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, 0), Freq: b.park[g.Qubits[0]], Color: -1,
				})
			}
			f.Issue(idx)
		}
		colors := 0
		if len(scr.active) > 0 {
			colors = 1
		}
		b.emitSlice(events, colors, 0)
	}
	return b.finish(), nil
}

// Static is Baseline S (Table I): a program-independent frequency-aware
// compiler. It colors the whole crosstalk graph once (8 colors on a mesh,
// Fig 7), solves the SMT problem once, and schedules every slice ASAP with
// that fixed table — the strategy of static optimizers such as Versluis et
// al. and the Sycamore calibration.
type Static struct{}

// Name implements Compiler.
func (Static) Name() string { return "Baseline S" }

// StaticPalette is the persistable core of the program-independent
// per-coupler frequency table shared by Baseline S (as its whole strategy)
// and Baseline G (as its Sycamore-like per-pair calibration): a
// Welsh–Powell coloring of the nearest-neighbor crosstalk graph — the
// 8-color mesh palette of Fig 7 — mapped to frequencies by one SMT solve.
// A distance-2 whole-device palette would not fit any realistic band with
// usable separation.
//
// Colors index vertices of the distance-1 crosstalk graph, which is
// rebuilt deterministically per process from the (content-signed) device —
// that is what makes this value valid across processes and therefore
// snapshot-safe. All fields are immutable after construction.
type StaticPalette struct {
	// Colors assigns each crosstalk-graph vertex (coupler id) a palette
	// color, densely indexed.
	Colors graph.Coloring
	// Assign holds each color's interaction frequency (GHz), indexed by
	// color.
	Assign []float64
	// Delta is the frequency separation achieved by the solver.
	Delta float64
}

// ApproxSize reports the palette's approximate in-memory size in bytes for
// the compile cache's size-aware eviction.
func (p *StaticPalette) ApproxSize() int {
	return 4*len(p.Colors) + 8*len(p.Assign) + 64
}

func init() { compile.RegisterSnapshotType(&StaticPalette{}) }

// staticTable pairs the persistable palette with this process's crosstalk
// graph (cached separately in the xtalk region).
type staticTable struct {
	xg  *xtalk.Graph
	pal *StaticPalette
}

func (st *staticTable) freqAndColor(e graph.Edge) (float64, int) {
	v, _ := st.xg.VertexOf(e.U, e.V)
	col := int(st.pal.Colors[v])
	return st.pal.Assign[col], col
}

// buildStaticTable computes (or fetches from the cache) the device's
// program-independent palette. It is a pure function of the system, so it
// is shared by every Baseline S and Baseline G job on the same chip — and,
// through cache snapshots, across processes.
func buildStaticTable(b *builder, sys *phys.System) (*staticTable, error) {
	xg := b.ctx.Xtalk(sys.Device, 1)
	v, err := b.ctx.Static(b.sig, func() (any, error) {
		intCfg := b.part.InteractionConfig(sys.MeanAnharmonicity())
		coloring := graph.WelshPowell(xg.G)
		k := coloring.NumColors()
		budget := maxColorsFeasible(b.ctx, intCfg, 32)
		if k > budget {
			// Band cannot host the full static palette; merge the overflow
			// colors into the feasible range (a static compiler must ship
			// *some* table). This degrades separation exactly as frequency
			// crowding predicts.
			for v, col := range coloring {
				if col >= 0 {
					coloring[v] = col % int32(budget)
				}
			}
			k = budget
		}
		freqs, delta, err := b.ctx.SolveSMT(k, intCfg)
		if err != nil {
			return nil, err
		}
		return &StaticPalette{
			Colors: coloring,
			Assign: smt.AssignByOccupancy(coloring.ColorCounts(), freqs),
			Delta:  delta,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &staticTable{xg: xg, pal: v.(*StaticPalette)}, nil
}

// staticPalette returns the per-coupler frequency lookup used by the gmon
// baseline.
func staticPalette(b *builder, sys *phys.System) (func(graph.Edge) float64, error) {
	st, err := buildStaticTable(b, sys)
	if err != nil {
		return nil, err
	}
	return func(e graph.Edge) float64 {
		f, _ := st.freqAndColor(e)
		return f
	}, nil
}

// Compile implements Compiler.
func (Static) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	b, err := newBuilder(ctx, "Baseline S", c, sys, opts)
	if err != nil {
		return nil, err
	}
	st, err := buildStaticTable(b, sys)
	if err != nil {
		b.abort()
		return nil, err
	}
	b.xg = st.xg

	scr := b.scr
	scr.ensureColors(len(st.pal.Assign))
	f := b.front
	for !f.Done() {
		ready := f.Ready()
		var events []GateEvent
		for _, idx := range ready {
			g := b.circ.Gates[idx]
			if g.Kind.IsTwoQubit() {
				e := graph.NewEdge(g.Qubits[0], g.Qubits[1])
				freq, col := st.freqAndColor(e)
				if !scr.colorSeen[col] {
					scr.colorSeen[col] = true
					scr.colorList = append(scr.colorList, int32(col))
				}
				b.setFreq(g.Qubits[0], freq)
				b.setFreq(g.Qubits[1], freq)
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, freq), Freq: freq, Color: col,
				})
			} else {
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, 0), Freq: b.park[g.Qubits[0]], Color: -1,
				})
			}
			f.Issue(idx)
		}
		b.emitSlice(events, len(scr.colorList), st.pal.Delta)
	}
	return b.finish(), nil
}
