package circuit

import (
	"math"
	"math/cmplx"
)

// Mat2 is a single-qubit operator in the {|0⟩, |1⟩} basis.
type Mat2 [2][2]complex128

// Mat4 is a two-qubit operator in the {|00⟩, |01⟩, |10⟩, |11⟩} basis, with
// the first qubit as the high-order bit.
type Mat4 [4][4]complex128

// Mul2 returns a·b.
func Mul2(a, b Mat2) Mat2 {
	var c Mat2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}

// Mul4 returns a·b.
func Mul4(a, b Mat4) Mat4 {
	var c Mat4
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < 4; j++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}

// Dagger2 returns the conjugate transpose of a.
func Dagger2(a Mat2) Mat2 {
	var c Mat2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			c[i][j] = cmplx.Conj(a[j][i])
		}
	}
	return c
}

// Dagger4 returns the conjugate transpose of a.
func Dagger4(a Mat4) Mat4 {
	var c Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c[i][j] = cmplx.Conj(a[j][i])
		}
	}
	return c
}

// Kron returns a⊗b (a acts on the first / high-order qubit).
func Kron(a, b Mat2) Mat4 {
	var c Mat4
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				for l := 0; l < 2; l++ {
					c[2*i+k][2*j+l] = a[i][j] * b[k][l]
				}
			}
		}
	}
	return c
}

// Identity4 returns the two-qubit identity.
func Identity4() Mat4 {
	var c Mat4
	for i := range c {
		c[i][i] = 1
	}
	return c
}

// IsUnitary2 reports whether a†a = I within tolerance.
func IsUnitary2(a Mat2, tol float64) bool {
	p := Mul2(Dagger2(a), a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// IsUnitary4 reports whether a†a = I within tolerance.
func IsUnitary4(a Mat4, tol float64) bool {
	p := Mul4(Dagger4(a), a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// EqualUpToGlobalPhase4 reports whether a = e^{iγ}·b for some phase γ,
// i.e. |tr(a†b)| = 4 within tolerance.
func EqualUpToGlobalPhase4(a, b Mat4, tol float64) bool {
	var tr complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			tr += cmplx.Conj(a[j][i]) * b[j][i]
		}
	}
	return math.Abs(cmplx.Abs(tr)-4) < tol
}

// Swap4 reorders a two-qubit operator so that the roles of the first and
// second qubit are exchanged: SWAP·a·SWAP.
func Swap4(a Mat4) Mat4 {
	perm := [4]int{0, 2, 1, 3}
	var c Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c[perm[i]][perm[j]] = a[i][j]
		}
	}
	return c
}
