package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchGraphs builds coloring workloads shaped like the compiler's: the
// line graph of a mesh (what WelshPowell colors for static palettes) and a
// random graph of comparable density.
func meshLineGraph(side int) *Graph {
	g := New()
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	lg, _ := LineGraph(g)
	return lg
}

// BenchmarkColoring measures the greedy coloring hot path (used per slice
// by the compiler and per device by the static baselines). allocs/op is
// the headline number: the flat representation colors with a constant
// handful of allocations instead of one map per vertex.
func BenchmarkColoring(b *testing.B) {
	for _, side := range []int{8, 16} {
		lg := meshLineGraph(side)
		b.Run(fmt.Sprintf("WelshPowell/mesh-line-%dx%d", side, side), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c := WelshPowell(lg); !c.Valid(lg) {
					b.Fatal("invalid coloring")
				}
			}
		})
		b.Run(fmt.Sprintf("Greedy/mesh-line-%dx%d", side, side), func(b *testing.B) {
			order := lg.Nodes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c := GreedyColoring(lg, order); !c.Valid(lg) {
					b.Fatal("invalid coloring")
				}
			}
		})
		b.Run(fmt.Sprintf("Bounded2/mesh-line-%dx%d", side, side), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BoundedColoring(lg, 2)
			}
		})
	}
	rng := rand.New(rand.NewSource(3))
	g := gnp(256, 0.05, rng)
	b.Run("WelshPowell/gnp-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if c := WelshPowell(g); !c.Valid(g) {
				b.Fatal("invalid coloring")
			}
		}
	})
}
