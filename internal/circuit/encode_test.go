package circuit

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randomEncCircuit builds a structurally valid random circuit: a mix of all
// single-qubit kinds (parametric ones with random angles, including the
// awkward float values) and all two-qubit kinds on distinct operands.
func randomEncCircuit(rng *rand.Rand, maxQubits, maxGates int) *Circuit {
	n := 2 + rng.Intn(maxQubits-1)
	c := New(n)
	singles := []Kind{I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SY, SW}
	params := []Kind{RX, RY, RZ}
	doubles := []Kind{CZ, ISwap, SqrtISwap, CNOT, SWAP}
	awkward := []float64{0, math.Copysign(0, -1), math.Pi, -math.Pi / 2, math.SmallestNonzeroFloat64, math.MaxFloat64}
	for i, ng := 0, rng.Intn(maxGates+1); i < ng; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Add(Gate{Kind: singles[rng.Intn(len(singles))], Qubits: []int{rng.Intn(n)}})
		case 1:
			theta := rng.NormFloat64()
			if rng.Intn(4) == 0 {
				theta = awkward[rng.Intn(len(awkward))]
			}
			c.Add(Gate{Kind: params[rng.Intn(len(params))], Qubits: []int{rng.Intn(n)}, Theta: theta})
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Add(Gate{Kind: doubles[rng.Intn(len(doubles))], Qubits: []int{a, b}})
		}
	}
	return c
}

// TestCanonicalRoundTripRandom is the core content-addressing property:
// encode→decode→re-sign must reproduce the original signature (and the
// re-encoded bytes must match, i.e. the canonical form is a fixed point).
func TestCanonicalRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		c := randomEncCircuit(rng, 20, 60)
		blob := c.EncodeCanonical()
		got, err := DecodeCanonical(blob)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Signature() != c.Signature() {
			t.Fatalf("case %d: decoded signature %s != original %s\noriginal:\n%s\ndecoded:\n%s",
				i, got.Signature(), c.Signature(), c, got)
		}
		if !bytes.Equal(got.EncodeCanonical(), blob) {
			t.Fatalf("case %d: re-encoding the decoded circuit changed the bytes", i)
		}
	}
}

// TestCanonicalRoundTripExact pins field-level equality, not just signature
// equality, on a circuit exercising every gate family.
func TestCanonicalRoundTripExact(t *testing.T) {
	c := New(4)
	c.H(0).X(1).RZ(2, math.Pi/3).RX(3, -1.25).CZ(0, 1).ISwap(1, 2).SqrtISwap(2, 3).CNOT(3, 0).SWAP(0, 2)
	got, err := DecodeCanonical(c.EncodeCanonical())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.NumQubits != c.NumQubits || len(got.Gates) != len(c.Gates) {
		t.Fatalf("shape changed: got %d qubits/%d gates, want %d/%d",
			got.NumQubits, len(got.Gates), c.NumQubits, len(c.Gates))
	}
	for i, g := range c.Gates {
		d := got.Gates[i]
		if d.Kind != g.Kind || len(d.Qubits) != len(g.Qubits) ||
			math.Float64bits(d.Theta) != math.Float64bits(g.Theta) {
			t.Fatalf("gate %d changed: got %+v, want %+v", i, d, g)
		}
		for j := range g.Qubits {
			if d.Qubits[j] != g.Qubits[j] {
				t.Fatalf("gate %d operand %d changed: got %d, want %d", i, j, d.Qubits[j], g.Qubits[j])
			}
		}
	}
}

// TestCanonicalEncodingInjective mirrors the SliceKey collision-proof test:
// adversarially close circuit pairs — the kinds of near-misses a sloppy
// encoding (skipping theta on non-parametric gates, concatenating qubit
// ids without arity, folding counts together) would conflate — must encode
// to distinct bytes.
func TestCanonicalEncodingInjective(t *testing.T) {
	pairs := []struct {
		name string
		a, b *Circuit
	}{
		{
			// A theta on a non-parametric gate still changes the bytes:
			// Signature mixes Theta unconditionally, so the encoding must too
			// or round-tripped signatures would diverge.
			name: "theta on non-parametric gate",
			a:    &Circuit{NumQubits: 2, Gates: []Gate{{Kind: H, Qubits: []int{0}}}},
			b:    &Circuit{NumQubits: 2, Gates: []Gate{{Kind: H, Qubits: []int{0}, Theta: 1}}},
		},
		{
			name: "qubit count vs gate operand",
			a:    New(2).H(1),
			b:    New(3).H(1),
		},
		{
			// One two-qubit gate on (0,1) vs two single-qubit gates on 0 and
			// 1: same flattened operand stream, different arity structure.
			name: "arity structure",
			a:    New(2).CZ(0, 1),
			b:    &Circuit{NumQubits: 2, Gates: []Gate{{Kind: CZ, Qubits: []int{0}}, {Kind: CZ, Qubits: []int{1}}}},
		},
		{
			name: "operand order",
			a:    New(3).CNOT(0, 1),
			b:    New(3).CNOT(1, 0),
		},
		{
			name: "zero vs negative-zero theta",
			a:    New(1).RZ(0, 0),
			b:    New(1).RZ(0, math.Copysign(0, -1)),
		},
		{
			name: "trailing identity gate",
			a:    New(2).CZ(0, 1),
			b:    New(2).CZ(0, 1).I(0),
		},
	}
	for _, p := range pairs {
		if bytes.Equal(p.a.EncodeCanonical(), p.b.EncodeCanonical()) {
			t.Errorf("%s: distinct circuits share one canonical encoding", p.name)
		}
	}
}

// TestDecodeCanonicalRejectsMalformed: corrupt inputs must fail loudly, not
// produce a plausible wrong circuit for the store to serve.
func TestDecodeCanonicalRejectsMalformed(t *testing.T) {
	valid := New(3).H(0).CZ(0, 1).RZ(2, 0.5).EncodeCanonical()
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      append([]byte("zz"), valid[2:]...),
		"bad version":    append([]byte{'f', 'c', 99}, valid[3:]...),
		"truncated":      valid[:len(valid)-3],
		"trailing bytes": append(append([]byte{}, valid...), 0),
	}
	// Qubit id out of range: one gate on qubit 7 of a 2-qubit circuit.
	oob := (&Circuit{NumQubits: 8, Gates: []Gate{{Kind: H, Qubits: []int{7}}}}).EncodeCanonical()
	oob[3] = 2 // NumQubits varint: 8 -> 2, leaving the operand out of range
	cases["operand out of range"] = oob
	for name, data := range cases {
		if c, err := DecodeCanonical(data); err == nil {
			t.Errorf("%s: decode accepted malformed input: %v", name, c)
		}
	}
	if _, err := DecodeCanonical(valid); err != nil {
		t.Fatalf("control: valid blob rejected: %v", err)
	}
}
