package compile

import (
	"container/list"
	"runtime"
	"sync"
)

// maxShards bounds the shard count. 64 shards keep the per-shard maps
// dense at the default capacity while covering every host the batch
// engine realistically runs on.
const maxShards = 64

// defaultShardCount picks the smallest power of two >= GOMAXPROCS,
// clamped to [1, maxShards]: one shard per runnable worker removes the
// global lock from the hot path without fragmenting the LRU into
// uselessly small pieces.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < maxShards {
		s <<= 1
	}
	return s
}

// cacheShard is one independently locked slice of the cache: its own LRU
// list, entry map and per-region counters. A shard owns every key whose
// hash lands in it, so all ordering and accounting for that key is
// single-shard and needs only the shard mutex.
type cacheShard struct {
	mu    sync.Mutex // guards every field below
	cap   int        // capacity in cost units (see entryCost)
	used  int        // total cost of resident entries
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats map[string]*Stats
}

type cacheEntry struct {
	key    string // namespaced: region + "\x00" + key
	region string
	value  any
	cost   int // capacity units (entryCost at insertion)
}

func newCacheShard(capacity int) *cacheShard {
	return &cacheShard{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		stats: make(map[string]*Stats),
	}
}

func (s *cacheShard) regionStats(region string) *Stats {
	st, ok := s.stats[region]
	if !ok {
		st = &Stats{}
		s.stats[region] = st
	}
	return st
}

// get looks up nk, promoting it on a hit. When account is false the
// counters are left untouched (used by the single-flight re-check, whose
// caller already recorded its miss).
func (s *cacheShard) get(region, nk string, account bool) (any, bool) {
	el, ok := s.items[nk]
	if !ok {
		if account {
			s.regionStats(region).Misses++
		}
		return nil, false
	}
	if account {
		s.regionStats(region).Hits++
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

func (s *cacheShard) put(region, nk string, value any) {
	cost := entryCost(value)
	if el, ok := s.items[nk]; ok {
		ent := el.Value.(*cacheEntry)
		s.used += cost - ent.cost
		ent.value, ent.cost = value, cost
		s.ll.MoveToFront(el)
		s.evict()
		return
	}
	s.items[nk] = s.ll.PushFront(&cacheEntry{key: nk, region: region, value: value, cost: cost})
	s.used += cost
	s.evict()
}

// evict removes least-recently-used entries until the shard's cost fits its
// capacity. The most recent entry is never evicted, so one entry larger
// than the whole shard still caches (it just keeps the shard to itself).
func (s *cacheShard) evict() {
	for s.used > s.cap && s.ll.Len() > 1 {
		oldest := s.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		s.ll.Remove(oldest)
		delete(s.items, ent.key)
		s.used -= ent.cost
		s.regionStats(ent.region).Evictions++
	}
}
