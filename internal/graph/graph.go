// Package graph provides the undirected-graph machinery used throughout the
// crosstalk-mitigation compiler: device connectivity graphs, their line
// graphs, crosstalk graphs, breadth-first distances, and greedy vertex
// coloring (Welsh–Powell).
//
// Graphs are simple (no self loops, no parallel edges) and undirected, with
// integer vertex identifiers. All iteration orders are deterministic (sorted
// ascending) so that compilation results are reproducible run to run.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is an undirected edge between vertices U and V, normalized U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the normalized edge between a and b.
// It panics if a == b, since the graphs here are simple.
func NewEdge(a, b int) Edge {
	if a == b {
		panic(fmt.Sprintf("graph: self loop on vertex %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Other returns the endpoint of e that is not v.
// It panics if v is not an endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not on edge %v", v, e))
}

// Has reports whether v is an endpoint of e.
func (e Edge) Has(v int) bool { return e.U == v || e.V == v }

// SharesVertex reports whether e and f have a common endpoint.
func (e Edge) SharesVertex(f Edge) bool {
	return e.Has(f.U) || e.Has(f.V)
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph over integer vertices.
// The zero value is not usable; construct with New.
type Graph struct {
	adj map[int]map[int]struct{}
	m   int // edge count
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[int]map[int]struct{})}
}

// FromEdges builds a graph containing the given edges (and their endpoints).
func FromEdges(edges []Edge) *Graph {
	g := New()
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// AddNode inserts an isolated vertex; it is a no-op if v already exists.
func (g *Graph) AddNode(v int) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[int]struct{})
	}
}

// AddEdge inserts the undirected edge {a,b}, adding endpoints as needed.
// Adding an existing edge is a no-op. It panics on self loops.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		panic(fmt.Sprintf("graph: self loop on vertex %d", a))
	}
	g.AddNode(a)
	g.AddNode(b)
	if _, ok := g.adj[a][b]; ok {
		return
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.m++
}

// RemoveEdge deletes the edge {a,b} if present.
func (g *Graph) RemoveEdge(a, b int) {
	if _, ok := g.adj[a][b]; !ok {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.m--
}

// HasNode reports whether v is a vertex of g.
func (g *Graph) HasNode(v int) bool {
	_, ok := g.adj[v]
	return ok
}

// HasEdge reports whether the edge {a,b} is present.
func (g *Graph) HasEdge(a, b int) bool {
	_, ok := g.adj[a][b]
	return ok
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the number of neighbors of v (0 if v is absent).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the largest vertex degree in g (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// Nodes returns the vertices in ascending order.
func (g *Graph) Nodes() []int {
	vs := make([]int, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Neighbors returns the neighbors of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	ns := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

// Edges returns all edges sorted by (U, V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for v, nbrs := range g.adj {
		for u := range nbrs {
			if v < u {
				es = append(es, Edge{U: v, V: u})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for v := range g.adj {
		c.AddNode(v)
	}
	for v, nbrs := range g.adj {
		for u := range nbrs {
			if v < u {
				c.AddEdge(v, u)
			}
		}
	}
	return c
}

// Subgraph returns the subgraph induced by the given vertex set.
func (g *Graph) Subgraph(vertices []int) *Graph {
	keep := make(map[int]struct{}, len(vertices))
	for _, v := range vertices {
		if g.HasNode(v) {
			keep[v] = struct{}{}
		}
	}
	s := New()
	for v := range keep {
		s.AddNode(v)
	}
	for v := range keep {
		for u := range g.adj[v] {
			if _, ok := keep[u]; ok && v < u {
				s.AddEdge(v, u)
			}
		}
	}
	return s
}

// String renders the graph as "n=<nodes> m=<edges> [edge list]".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d [", g.NumNodes(), g.NumEdges())
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	b.WriteByte(']')
	return b.String()
}
