package compile

import (
	"bytes"
	"encoding/gob"
	"os"
	"reflect"
	"strings"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/mapping"
	"fastsc/internal/topology"
)

// TestSnapshotRouteCircRoundTrip pins the v6 tentpole: route and circ
// entries persist through the content-addressed circuit pool and restore
// as working cache entries — a warm process must route and analyze these
// circuits purely from cache.
func TestSnapshotRouteCircRoundTrip(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(9)
		c.H(0).CNOT(0, 8).CZ(3, 5).RZ(4, 0.75)
		return c
	}
	dev := topology.SquareGrid(9)
	ctx := NewContext(1)
	want, err := ctx.Route(build(), dev, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ana := ctx.Analysis(build())

	path := snapshotPath(t)
	if err := ctx.Cache.Save(path); err != nil {
		t.Fatal(err)
	}
	warm := NewCache(0)
	res, err := warm.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != "" || res.Restored == 0 {
		t.Fatalf("LoadSnapshot = %+v, want clean restore", res)
	}

	// The restored route entry must be a hit for the same request…
	warmCtx := &Context{Cache: warm}
	got, err := warmCtx.Route(build(), dev, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.StatsByRegion()[RegionRoute]; st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("route region after restore: %+v, want a pure hit", st)
	}
	// …and byte-identical to the original routed result.
	if got.SwapCount != want.SwapCount ||
		got.Routed.Signature() != want.Routed.Signature() ||
		!reflect.DeepEqual(got.Inserted, want.Inserted) ||
		!reflect.DeepEqual(got.Final.LogToPhys, want.Final.LogToPhys) ||
		!reflect.DeepEqual(got.Final.PhysToLog, want.Final.PhysToLog) {
		t.Fatalf("restored route result differs:\ngot  %+v\nwant %+v", got, want)
	}

	// The circ entry restores as a re-derived analysis under the same key.
	gotAna := warmCtx.Analysis(build())
	if st := warm.StatsByRegion()[RegionCircuit]; st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("circ region after restore: %+v, want a pure hit", st)
	}
	if gotAna.Sig != ana.Sig || gotAna.Depth() != ana.Depth() || gotAna.NumGates != ana.NumGates {
		t.Fatalf("restored analysis differs: got sig=%s depth=%d, want sig=%s depth=%d",
			gotAna.Sig, gotAna.Depth(), ana.Sig, ana.Depth())
	}
}

// TestSnapshotCircuitPoolDedupes: many route entries over one routed
// circuit must share a single canonical blob in the pool.
func TestSnapshotCircuitPoolDedupes(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(4)
		c.CZ(0, 1).CZ(2, 3)
		return c
	}
	dev := topology.SquareGrid(4)
	ctx := NewContext(1)
	// Same circuit, two option sets that route identically (no SWAPs
	// needed): two route keys, one routed-circuit content.
	if _, err := ctx.Route(build(), dev, mapping.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Route(build(), dev, mapping.Options{Router: mapping.RouterConfig{Algorithm: mapping.RouterLookahead}}); err != nil {
		t.Fatal(err)
	}
	path := snapshotPath(t)
	if err := ctx.Cache.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap diskSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Route) != 2 {
		t.Fatalf("want 2 route entries, got %d", len(snap.Route))
	}
	if len(snap.Circuits) != 1 {
		t.Fatalf("want 1 pooled circuit for 2 identical routed results, got %d", len(snap.Circuits))
	}
}

// TestSnapshotOversizeCircuitSkipped: a circuit whose canonical encoding
// exceeds the pool bound is dropped from the snapshot (entry and blob),
// not written.
func TestSnapshotOversizeCircuitSkipped(t *testing.T) {
	big := circuit.New(2)
	for i := 0; i < maxCanonicalCircuitBytes/10; i++ {
		big.H(i % 2)
	}
	if len(big.EncodeCanonical()) <= maxCanonicalCircuitBytes {
		t.Fatal("test circuit not big enough to exceed the pool bound")
	}
	pool := make(map[string][]byte)
	if poolCircuit(pool, big.Signature(), big) {
		t.Fatal("oversize circuit admitted into the pool")
	}
	if len(pool) != 0 {
		t.Fatal("pool grew despite rejection")
	}

	c := NewCache(0)
	c.Put(RegionCircuit, CircuitKey(big, big.Signature()), circuit.Analyze(big))
	path := snapshotPath(t)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	warm := NewCache(0)
	if n, err := warm.Load(path); err != nil || n != 0 {
		t.Fatalf("oversize circ entry should be skipped: n=%d err=%v", n, err)
	}
}

// makeV5Snapshot writes a snapshot the way a v5 binary would have: current
// contents re-stamped to format/key version 5 with the slice keys carrying
// the v5 generation prefix and no v6 sections.
func makeV5Snapshot(t *testing.T, path string) (sliceKeyV6 string) {
	t.Helper()
	c := NewCache(0)
	sliceKeyV6 = SliceKey("a1b2c3d4e5f60718", 2, 3, []int{1, 4, 9})
	compKeyV6 := SliceComponentKey("a1b2c3d4e5f60718", 2, 3, []int{2, 5})
	c.Put(RegionSlice, sliceKeyV6, SliceSolution{Coloring: graph.Coloring{0}, NumColors: 1, Assign: []float64{6.2}, Delta: 0.3})
	c.Put(RegionSlice, compKeyV6, ComponentSolution{Coloring: graph.Coloring{0}, NumColors: 1, Counts: []int{1}})
	c.Put(RegionSMT, "3|aa|bb|cc|dd", smtResult{xs: []float64{6.1}, delta: 0.2})
	c.Put(RegionParking, "sysSig", []float64{5.0})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap diskSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 5
	snap.KeyVersion = 5
	reslice := make(map[string]SliceSolution, len(snap.Slice))
	for k, v := range snap.Slice {
		reslice[strings.Replace(k, "v6|", "v5|", 1)] = v
	}
	snap.Slice = reslice
	recomp := make(map[string]ComponentSolution, len(snap.SliceComp))
	for k, v := range snap.SliceComp {
		recomp[strings.Replace(k, "v6|", "v5|", 1)] = v
	}
	snap.SliceComp = recomp
	snap.Circuits, snap.Route, snap.Circ = nil, nil, nil
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return sliceKeyV6
}

// TestSnapshotMigratesV5 is the migration round-trip pinned by the
// acceptance criteria: a snapshot written at the previous
// SnapshotVersion/KeyVersion restores > 0 entries after the bump, with
// the versioned slice keys re-keyed to the current generation so the memo
// actually hits them.
func TestSnapshotMigratesV5(t *testing.T) {
	path := snapshotPath(t)
	sliceKeyV6 := makeV5Snapshot(t, path)
	c := NewCache(0)
	res, err := c.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != "" || res.Missing {
		t.Fatalf("v5 snapshot degraded: %+v", res)
	}
	if res.FromVersion != 5 {
		t.Fatalf("FromVersion = %d, want 5", res.FromVersion)
	}
	if res.Restored != 4 {
		t.Fatalf("Restored = %d, want all 4 entries", res.Restored)
	}
	if res.Migrated != 2 {
		t.Fatalf("Migrated = %d, want the 2 versioned slice keys", res.Migrated)
	}
	// The re-keyed entry must hit under the *current* key the memo builds.
	if _, ok := c.Get(RegionSlice, sliceKeyV6); !ok {
		t.Fatal("migrated slice entry does not hit under its v6 key")
	}
	if _, ok := c.Get(RegionSMT, "3|aa|bb|cc|dd"); !ok {
		t.Fatal("unversioned smt entry lost in migration")
	}
}

// TestSnapshotAncientVersionIsCold: a version with no registered migration
// path (v4 and older, or any unknown step) degrades to cold with the
// reason reported — never an error, never a partial guess.
func TestSnapshotAncientVersionIsCold(t *testing.T) {
	path := snapshotPath(t)
	writeDoctoredSnapshot(t, path, func(s *diskSnapshot) {
		s.Version = 4
		s.KeyVersion = 3
	})
	c := NewCache(0)
	res, err := c.LoadSnapshot(path)
	if err != nil || res.Restored != 0 || c.Len() != 0 {
		t.Fatalf("ancient snapshot: res=%+v err=%v len=%d, want cold", res, err, c.Len())
	}
	if res.Degraded != DegradedNoMigration {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, DegradedNoMigration)
	}
}

// TestLoadResultDegradationReasons distinguishes cold-by-choice (missing
// file) from every cold-by-degradation flavor, which is what the
// fastscd_snapshot_degraded_total{reason=...} counter and the operators
// reading it rely on.
func TestLoadResultDegradationReasons(t *testing.T) {
	t.Run("missing", func(t *testing.T) {
		c := NewCache(0)
		res, err := c.LoadSnapshot(snapshotPath(t))
		if err != nil || !res.Missing || res.Degraded != "" {
			t.Fatalf("missing file: res=%+v err=%v, want Missing and not Degraded", res, err)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		path := snapshotPath(t)
		if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		c := NewCache(0)
		res, err := c.LoadSnapshot(path)
		if err != nil || res.Degraded != DegradedCorrupt {
			t.Fatalf("corrupt file: res=%+v err=%v, want Degraded=%q", res, err, DegradedCorrupt)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		path := snapshotPath(t)
		writeDoctoredSnapshot(t, path, func(s *diskSnapshot) { s.Version = SnapshotVersion + 1 })
		c := NewCache(0)
		res, err := c.LoadSnapshot(path)
		if err != nil || res.Degraded != DegradedFutureVersion {
			t.Fatalf("future version: res=%+v err=%v, want Degraded=%q", res, err, DegradedFutureVersion)
		}
	})
	t.Run("key-skew", func(t *testing.T) {
		path := snapshotPath(t)
		writeDoctoredSnapshot(t, path, func(s *diskSnapshot) { s.KeyVersion = KeyVersion - 1 })
		c := NewCache(0)
		res, err := c.LoadSnapshot(path)
		if err != nil || res.Degraded != DegradedKeySkew {
			t.Fatalf("key skew: res=%+v err=%v, want Degraded=%q", res, err, DegradedKeySkew)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		path := snapshotPath(t)
		writeDoctoredSnapshot(t, path, func(s *diskSnapshot) { s.Magic = "something-else" })
		c := NewCache(0)
		res, err := c.LoadSnapshot(path)
		if err != nil || res.Degraded != DegradedBadMagic {
			t.Fatalf("bad magic: res=%+v err=%v, want Degraded=%q", res, err, DegradedBadMagic)
		}
	})
}

// TestSnapshotTamperedPoolBlobDropped: a flipped bit in a pooled canonical
// blob must drop the blob and every entry referencing it — the re-sign
// check is what keeps the content-addressed store trustworthy.
func TestSnapshotTamperedPoolBlobDropped(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(4)
		c.CZ(0, 1).H(2).CZ(2, 3)
		return c
	}
	ctx := NewContext(1)
	if _, err := ctx.Route(build(), topology.SquareGrid(4), mapping.Options{}); err != nil {
		t.Fatal(err)
	}
	path := snapshotPath(t)
	if err := ctx.Cache.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap diskSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Circuits) == 0 || len(snap.Route) == 0 {
		t.Fatalf("expected pooled route content, got %d circuits / %d routes", len(snap.Circuits), len(snap.Route))
	}
	for sig, blob := range snap.Circuits {
		blob[len(blob)-1] ^= 0x40 // flip a theta bit: still decodes, wrong signature
		snap.Circuits[sig] = blob
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	warm := NewCache(0)
	res, err := warm.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := warm.Get(RegionRoute, RouteKey(build(), DeviceSignature(topology.SquareGrid(4)), mapping.Options{})); ok {
		t.Fatal("route entry referencing a tampered blob was served")
	}
	_ = res
}
