// Command fastscvet is fastsc's custom static-analysis suite: five
// repo-specific analyzers (maporder, hotalloc, poolpair, keyfields,
// ctxflow) that enforce at vet time the invariants the compiler's
// determinism and performance depend on. See internal/lint for the
// analyzer catalogue and the //fastsc:ignore suppression contract, and
// docs/architecture.md ("Invariants & enforcement") for the map from
// each invariant to its analyzer and backstopping runtime test.
//
// Two modes share the same analyzers and suppression accounting:
//
//	fastscvet [packages]             standalone: loads packages via go list
//	                                 and prints every finding plus the
//	                                 suppression audit; exit 1 on findings.
//	go vet -vettool=$(FASTSCVET) …   unitchecker: the go command invokes the
//	                                 binary once per package with a .cfg
//	                                 file (the stable vet protocol); exit 2
//	                                 on findings, and the standard vet
//	                                 analyzers run separately via plain
//	                                 `go vet`.
//
// `make lint` runs both plain `go vet` and the -vettool pass, in lockstep
// with .github/workflows/ci.yml.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"fastsc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := lint.Analyzers()

	// The go vet tool protocol: -V=full prints a line identifying this
	// build (the go command folds it into its action cache key), -flags
	// describes the tool's flags (fastscvet has none), and a lone
	// path/to/unit.cfg argument analyzes one package unit.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return lint.RunUnitchecker(analyzers, args[0], os.Stderr)
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastscvet:", err)
		return 1
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastscvet:", err)
		return 1
	}
	findings, suppressed := 0, 0
	for _, pkg := range pkgs {
		res := lint.Analyze(pkg, analyzers)
		lint.PrintResult(os.Stderr, res)
		findings += len(res.Diagnostics)
		suppressed += len(res.Suppressed)
	}
	fmt.Fprintf(os.Stderr, "fastscvet: %d package(s), %d finding(s), %d suppression(s) honored\n",
		len(pkgs), findings, suppressed)
	if findings > 0 {
		return 1
	}
	return 0
}

// printVersion emits the -V=full line. Hashing the executable makes the
// line change whenever the tool is rebuilt, which is exactly what the go
// command's result caching needs to invalidate stale vet verdicts.
func printVersion() {
	name := "fastscvet"
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h := sha256.Sum256(data)
			sum = fmt.Sprintf("%x", h[:8])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, sum)
}
