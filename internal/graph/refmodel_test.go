package graph

// Representation-equivalence property tests: the flat adjacency-slice Graph
// must agree with a trivially-correct map-based reference model on every
// query, under randomized interleaved edge insert/remove sequences. The
// reference is the shape of the pre-flat-core implementation
// (map[int]map[int]struct{} adjacency), so these tests pin the refactor to
// the old semantics.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// refGraph is the map-based reference model.
type refGraph struct {
	adj map[int]map[int]struct{}
	m   int
}

func newRefGraph() *refGraph {
	return &refGraph{adj: make(map[int]map[int]struct{})}
}

func (g *refGraph) addNode(v int) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[int]struct{})
	}
}

func (g *refGraph) addEdge(a, b int) {
	g.addNode(a)
	g.addNode(b)
	if _, ok := g.adj[a][b]; ok {
		return
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.m++
}

func (g *refGraph) removeEdge(a, b int) {
	if _, ok := g.adj[a][b]; !ok {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.m--
}

func (g *refGraph) hasEdge(a, b int) bool {
	_, ok := g.adj[a][b]
	return ok
}

func (g *refGraph) neighbors(v int) []int {
	ns := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

func (g *refGraph) nodes() []int {
	vs := make([]int, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

func (g *refGraph) edges() []Edge {
	var es []Edge
	for v, nbrs := range g.adj {
		for u := range nbrs {
			if v < u {
				es = append(es, Edge{U: v, V: u})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// checkAgainstRef compares every observable of g against the reference.
func checkAgainstRef(t *testing.T, step int, g *Graph, ref *refGraph, idSpace int) {
	t.Helper()
	if g.NumNodes() != len(ref.adj) {
		t.Fatalf("step %d: NumNodes = %d, ref %d", step, g.NumNodes(), len(ref.adj))
	}
	if g.NumEdges() != ref.m {
		t.Fatalf("step %d: NumEdges = %d, ref %d", step, g.NumEdges(), ref.m)
	}
	if got, want := g.Nodes(), ref.nodes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: Nodes = %v, ref %v", step, got, want)
	}
	if got, want := g.Edges(), ref.edges(); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
		t.Fatalf("step %d: Edges = %v, ref %v", step, got, want)
	}
	for v := 0; v < idSpace; v++ {
		_, refHas := ref.adj[v]
		if g.HasNode(v) != refHas {
			t.Fatalf("step %d: HasNode(%d) = %v, ref %v", step, v, g.HasNode(v), refHas)
		}
		if g.Degree(v) != len(ref.adj[v]) {
			t.Fatalf("step %d: Degree(%d) = %d, ref %d", step, v, g.Degree(v), len(ref.adj[v]))
		}
		if refHas {
			if got, want := g.Neighbors(v), ref.neighbors(v); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("step %d: Neighbors(%d) = %v, ref %v", step, v, got, want)
			}
		}
		for u := 0; u < idSpace; u++ {
			if g.HasEdge(v, u) != ref.hasEdge(v, u) {
				t.Fatalf("step %d: HasEdge(%d,%d) = %v, ref %v", step, v, u, g.HasEdge(v, u), ref.hasEdge(v, u))
			}
		}
	}
}

// TestFlatGraphMatchesMapReference drives both representations through the
// same randomized insert/remove sequence and checks full observable
// equality after every batch, plus Clone and Subgraph equivalence.
func TestFlatGraphMatchesMapReference(t *testing.T) {
	const (
		idSpace = 14
		steps   = 600
		seeds   = 8
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		ref := newRefGraph()
		for step := 0; step < steps; step++ {
			a, b := rng.Intn(idSpace), rng.Intn(idSpace)
			switch op := rng.Intn(10); {
			case op < 5 && a != b: // bias toward insertion
				g.AddEdge(a, b)
				ref.addEdge(a, b)
			case op < 8 && a != b:
				g.RemoveEdge(a, b)
				ref.removeEdge(a, b)
			default:
				g.AddNode(a)
				ref.addNode(a)
			}
			if step%37 == 0 || step == steps-1 {
				checkAgainstRef(t, step, g, ref, idSpace)
			}
		}

		// Clone must be equal and independent.
		c := g.Clone()
		checkAgainstRef(t, -1, c, ref, idSpace)
		c.AddEdge(idSpace, idSpace+1)
		if g.HasEdge(idSpace, idSpace+1) {
			t.Fatal("Clone shares storage with the original")
		}

		// Subgraph must match the reference model's induced subgraph.
		var keep []int
		for v := 0; v < idSpace; v++ {
			if rng.Intn(2) == 0 {
				keep = append(keep, v)
			}
		}
		sub := g.Subgraph(keep)
		subRef := newRefGraph()
		inKeep := make(map[int]bool)
		for _, v := range keep {
			if _, ok := ref.adj[v]; ok {
				inKeep[v] = true
				subRef.addNode(v)
			}
		}
		for _, e := range ref.edges() {
			if inKeep[e.U] && inKeep[e.V] {
				subRef.addEdge(e.U, e.V)
			}
		}
		checkAgainstRef(t, -2, sub, subRef, idSpace)
	}
}

// TestEdgeIDMatchesEdgesOrder checks the dense edge index against the
// sorted edge enumeration, including after mutations that invalidate it.
func TestEdgeIDMatchesEdgesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gnp(12, 0.4, rng)
	verify := func() {
		t.Helper()
		for id, e := range g.Edges() {
			got, ok := g.EdgeID(e.U, e.V)
			if !ok || got != id {
				t.Fatalf("EdgeID(%v) = %d,%v, want %d", e, got, ok, id)
			}
			if got, ok := g.EdgeID(e.V, e.U); !ok || got != id {
				t.Fatalf("EdgeID reversed (%v) = %d,%v, want %d", e, got, ok, id)
			}
		}
		if _, ok := g.EdgeID(0, 0); ok {
			t.Fatal("EdgeID(0,0) should not exist")
		}
	}
	verify()
	// Mutations must invalidate the cached index.
	g.AddEdge(0, 11)
	verify()
	es := g.Edges()
	g.RemoveEdge(es[len(es)/2].U, es[len(es)/2].V)
	verify()
	if _, ok := g.EdgeID(es[len(es)/2].U, es[len(es)/2].V); ok {
		t.Fatal("EdgeID still reports a removed edge")
	}
}

// TestBFSDistancesMatchesReference cross-checks the dense BFS against a
// Floyd–Warshall style reference on random graphs, and the flat all-pairs
// matrix against per-source BFS.
func TestBFSDistancesMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gnp(10, 0.25, rng)
		n := g.Cap()
		// Floyd–Warshall reference.
		const inf = 1 << 20
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
			for j := range d[i] {
				if i == j && g.HasNode(i) {
					d[i][j] = 0
				} else {
					d[i][j] = inf
				}
			}
		}
		for _, e := range g.Edges() {
			d[e.U][e.V], d[e.V][e.U] = 1, 1
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		all := g.AllPairsDistances()
		for i := 0; i < n; i++ {
			bfs := g.BFSDistances(i)
			for j := 0; j < n; j++ {
				want := d[i][j]
				if want >= inf || !g.HasNode(i) || !g.HasNode(j) {
					want = Unreachable
				}
				if bfs[j] != want {
					t.Fatalf("seed %d: BFS(%d)[%d] = %d, want %d", seed, i, j, bfs[j], want)
				}
				if all.At(i, j) != want {
					t.Fatalf("seed %d: AllPairs(%d,%d) = %d, want %d", seed, i, j, all.At(i, j), want)
				}
			}
		}
	}
}
