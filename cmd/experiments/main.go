// Command experiments regenerates the tables and figures of the paper's
// evaluation. With no arguments it runs everything; otherwise pass one or
// more experiment ids:
//
//	experiments fig9 fig13
//	experiments all
//
// Available ids: table1, table2, fig2, fig4, fig6, fig7, fig9, fig10,
// fig11, fig12, fig13, fig14, fig15, ext-gmon, validation.
package main

import (
	"fmt"
	"os"

	"fastsc/internal/expt"
)

type runner struct {
	id  string
	run func() error
}

func main() {
	runners := []runner{
		{"table1", func() error { show(expt.TableStrategies()); return nil }},
		{"table2", func() error { show(expt.TableBenchmarks()); return nil }},
		{"fig2", func() error { show(expt.Fig2InteractionStrength()); return nil }},
		{"fig4", func() error { show(expt.Fig4TransmonSpectrum()); return nil }},
		{"fig6", func() error {
			t, err := expt.Fig6Toy()
			if err != nil {
				return err
			}
			show(t)
			return nil
		}},
		{"fig7", func() error { show(expt.Fig7MeshColoring()); return nil }},
		{"fig9", func() error {
			r, err := expt.Fig9SuccessRates()
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig10", func() error {
			r, err := expt.Fig10DepthDecoherence()
			if err != nil {
				return err
			}
			show(r.DepthTable)
			show(r.DecoherenceTable)
			return nil
		}},
		{"fig11", func() error {
			r, err := expt.Fig11ColorSweep()
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig12", func() error {
			r, err := expt.Fig12ResidualCoupling()
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig13", func() error {
			r, err := expt.Fig13Connectivity()
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig14", func() error {
			t, err := expt.Fig14ExampleFrequencies()
			if err != nil {
				return err
			}
			show(t)
			return nil
		}},
		{"fig15", func() error { show(expt.Fig15Chevrons()); return nil }},
		{"ext-gmon", func() error {
			r, err := expt.ExtGmonDynamic()
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"validation", func() error {
			r, err := expt.ValidationHeuristic(150)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
	}

	want := os.Args[1:]
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, r := range runners {
			want = append(want, r.id)
		}
	}
	byID := map[string]runner{}
	for _, r := range runners {
		byID[r.id] = r
	}
	for _, id := range want {
		r, ok := byID[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		if err := r.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func show(t *expt.Table) {
	fmt.Println(t.String())
}
