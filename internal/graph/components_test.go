package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	g.AddNode(7)
	want := [][]int{{0, 1, 2}, {4, 5}, {7}}
	if got := g.Components(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Components() = %v, want %v", got, want)
	}
}

func TestComponentsEmptyGraph(t *testing.T) {
	if got := New().Components(); got != nil {
		t.Fatalf("Components() on empty graph = %v, want nil", got)
	}
}

func TestComponentsConnectedGraph(t *testing.T) {
	g := New()
	for v := 0; v < 5; v++ {
		g.AddEdge(v, (v+1)%6)
	}
	comps := g.Components()
	if len(comps) != 1 {
		t.Fatalf("cycle graph has %d components, want 1", len(comps))
	}
	if want := []int{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(comps[0], want) {
		t.Fatalf("component = %v, want %v", comps[0], want)
	}
}

func TestComponentsOfSubgraph(t *testing.T) {
	// A path 0-1-2-3-4: dropping vertex 2 splits the induced subgraph in
	// two — the decomposition the per-slice component solver relies on.
	g := New()
	for v := 0; v < 4; v++ {
		g.AddEdge(v, v+1)
	}
	sub := g.Subgraph([]int{0, 1, 3, 4})
	want := [][]int{{0, 1}, {3, 4}}
	if got := sub.Components(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Subgraph Components() = %v, want %v", got, want)
	}
}

// TestComponentsPropertyRandom checks the defining properties on random
// graphs: components partition the vertex set, each component's induced
// subgraph is connected, no edge crosses components, vertices ascend
// within a component, and components ascend by their minimum.
func TestComponentsPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := New()
		for v := 0; v < n; v++ {
			g.AddNode(v)
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		comps := g.Components()
		seen := make(map[int]int) // vertex -> component index
		prevMin := -1
		for ci, comp := range comps {
			if len(comp) == 0 {
				t.Fatalf("trial %d: empty component %d", trial, ci)
			}
			if comp[0] <= prevMin {
				t.Fatalf("trial %d: components out of order: %v", trial, comps)
			}
			prevMin = comp[0]
			for i, v := range comp {
				if i > 0 && comp[i-1] >= v {
					t.Fatalf("trial %d: component %d not ascending: %v", trial, ci, comp)
				}
				if _, dup := seen[v]; dup {
					t.Fatalf("trial %d: vertex %d in two components", trial, v)
				}
				seen[v] = ci
			}
			if !g.Subgraph(comp).Connected() {
				t.Fatalf("trial %d: component %v not connected", trial, comp)
			}
		}
		if len(seen) != len(g.Nodes()) {
			t.Fatalf("trial %d: components cover %d vertices, graph has %d",
				trial, len(seen), len(g.Nodes()))
		}
		for _, e := range g.Edges() {
			if seen[e.U] != seen[e.V] {
				t.Fatalf("trial %d: edge %v crosses components", trial, e)
			}
		}
	}
}
