package lint_test

import (
	"strings"
	"testing"

	"fastsc/internal/lint"
	"fastsc/internal/lint/linttest"
)

// TestSuppressFixture exercises the //fastsc:ignore machinery end to end:
// a well-formed directive silences its finding and lands in the counted
// audit trail; malformed and unused directives surface as fastscvet
// meta-findings (asserted by the fixture's want comments).
func TestSuppressFixture(t *testing.T) {
	res := linttest.Run(t, "suppress", lint.MapOrderAnalyzer)
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppress fixture honored %d suppressions, want 1: %+v", len(res.Suppressed), res.Suppressed)
	}
	s := res.Suppressed[0]
	if s.Analyzer != "maporder" || !strings.Contains(s.Reason, "key order is irrelevant") {
		t.Errorf("suppression = %+v, want the maporder directive from suppressed()", s)
	}
}
