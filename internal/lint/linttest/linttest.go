// Package linttest is the fixture harness for the fastscvet analyzers — a
// stdlib-only stand-in for golang.org/x/tools/go/analysis/analysistest.
// A fixture is one Go package under testdata/src/<name>/ (relative to the
// calling test's working directory); Run loads it through the same
// go list + export-data pipeline the real driver uses, runs the analyzers,
// and compares the surviving findings against `// want` expectations
// embedded in the fixture source:
//
//	for k := range m { // want `maporder: iteration over map "m" .*`
//
// Each want carries one or more quoted regular expressions (Go-quoted or
// backquoted), matched against the finding rendered as "analyzer: message"
// on the same line. Every finding must match a want and every want must be
// matched by a finding; mismatches fail the test. Run returns the full
// Result so tests can additionally assert on honored suppressions — the
// counted audit trail is part of the contract under test.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fastsc/internal/lint"
)

// Run loads testdata/src/<fixture>, analyzes it with the given analyzers,
// checks findings against the fixture's want comments, and returns the
// Result for further assertions.
func Run(t *testing.T, fixture string, analyzers ...*lint.Analyzer) lint.Result {
	t.Helper()
	pkgs, err := lint.Load(".", []string{"./testdata/src/" + fixture})
	if err != nil {
		t.Fatalf("loading fixture %q: %v", fixture, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %q resolved to %d packages, want 1", fixture, len(pkgs))
	}
	pkg := pkgs[0]
	res := lint.Analyze(pkg, analyzers)

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		rendered := d.Analyzer + ": " + d.Message
		if !claimWant(wants, d.Pos.Filename, d.Pos.Line, rendered) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.re.String())
		}
	}
	return res
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// claimWant marks the first unmatched want on (file, line) whose pattern
// matches rendered, reporting whether one was found.
func claimWant(wants []*want, file string, line int, rendered string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(rendered) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantMarker locates the expectation list inside a comment. Requiring a
// quote right after the keyword keeps prose mentioning "want" inert.
var wantMarker = regexp.MustCompile("(?:^|\\s)want\\s+([\"`].*)$")

// parseWants extracts every want expectation from the package's comments,
// keyed to the comment's own line.
func parseWants(pkg *lint.Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantMarker.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := m[1]
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want expectation %q: %v", pos.Filename, pos.Line, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out, nil
}
