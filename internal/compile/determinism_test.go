package compile_test

import (
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

func testSystem(n int) *phys.System {
	return phys.NewSystem(topology.SquareGrid(n), phys.DefaultParams(), 42)
}

// sameSchedule compares two schedules gate by gate, frequency by frequency.
func sameSchedule(t *testing.T, label string, a, b *schedule.Schedule) {
	t.Helper()
	if a.Depth() != b.Depth() {
		t.Fatalf("%s: depth %d vs %d", label, a.Depth(), b.Depth())
	}
	if math.Abs(a.TotalTime-b.TotalTime) > 1e-12 {
		t.Fatalf("%s: total time %v vs %v", label, a.TotalTime, b.TotalTime)
	}
	if a.MaxColorsUsed != b.MaxColorsUsed {
		t.Fatalf("%s: colors %d vs %d", label, a.MaxColorsUsed, b.MaxColorsUsed)
	}
	if !reflect.DeepEqual(a.ParkingFreqs, b.ParkingFreqs) {
		t.Fatalf("%s: parking frequencies differ", label)
	}
	for i := range a.Slices {
		sa, sb := a.Slices[i], b.Slices[i]
		if !reflect.DeepEqual(sa.Gates, sb.Gates) {
			t.Fatalf("%s: slice %d gates differ:\n%v\n%v", label, i, sa.Gates, sb.Gates)
		}
		if !reflect.DeepEqual(sa.Freqs, sb.Freqs) {
			t.Fatalf("%s: slice %d frequencies differ", label, i)
		}
		if sa.Colors != sb.Colors || sa.Delta != sb.Delta {
			t.Fatalf("%s: slice %d solver outcome differs", label, i)
		}
	}
}

// TestCachedCompilationIsDeterministic checks the engine's core contract:
// compiling with a shared (and pre-warmed) cache produces byte-identical
// schedules to compiling with no cache at all, for every strategy.
func TestCachedCompilationIsDeterministic(t *testing.T) {
	sys := testSystem(16)
	circs := map[string]*circuit.Circuit{
		"xeb-deep":    bench.XEB(sys.Device, 6, 7),
		"xeb-shallow": bench.XEB(sys.Device, 2, 3),
	}
	ctx := compile.NewContext(1)
	for name, c := range circs {
		for _, comp := range schedule.Extended() {
			label := comp.Name() + "/" + name
			uncached, err := comp.Compile(nil, c, sys, schedule.Options{})
			if err != nil {
				t.Fatalf("%s uncached: %v", label, err)
			}
			// First cached run fills the cache, second one hits it; both
			// must match the uncached compilation exactly.
			cold, err := comp.Compile(ctx, c, sys, schedule.Options{})
			if err != nil {
				t.Fatalf("%s cold cache: %v", label, err)
			}
			warm, err := comp.Compile(ctx, c, sys, schedule.Options{})
			if err != nil {
				t.Fatalf("%s warm cache: %v", label, err)
			}
			sameSchedule(t, label+" cold", uncached, cold)
			sameSchedule(t, label+" warm", uncached, warm)
		}
	}
	if ctx.Cache.TotalStats().Hits == 0 {
		t.Fatal("warm runs never hit the cache")
	}
}

// TestCacheSharedAcrossSystems checks that independently constructed
// systems with identical content share cache entries (content signatures,
// not pointers, key the cache).
func TestCacheSharedAcrossSystems(t *testing.T) {
	ctx := compile.NewContext(1)
	sysA := testSystem(9)
	sysB := testSystem(9)
	if compile.SystemSignature(sysA) != compile.SystemSignature(sysB) {
		t.Fatal("identical systems got different signatures")
	}
	c := bench.XEB(sysA.Device, 4, 7)
	if _, err := (schedule.ColorDynamic{}).Compile(ctx, c, sysA, schedule.Options{}); err != nil {
		t.Fatal(err)
	}
	before := ctx.Cache.StatsByRegion()[compile.RegionSlice]
	if _, err := (schedule.ColorDynamic{}).Compile(ctx, c, sysB, schedule.Options{}); err != nil {
		t.Fatal(err)
	}
	after := ctx.Cache.StatsByRegion()[compile.RegionSlice]
	if after.Hits <= before.Hits {
		t.Fatalf("second system reused no slice solutions: %+v -> %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Fatalf("second system recomputed %d slice solutions", after.Misses-before.Misses)
	}

	sysC := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 43) // different chip draw
	if compile.SystemSignature(sysA) == compile.SystemSignature(sysC) {
		t.Fatal("different fabrication draws must not share a signature")
	}
}

// TestBatchCompileMatchesSerial checks that the concurrent batch engine
// returns exactly what serial compilation returns, job for job.
func TestBatchCompileMatchesSerial(t *testing.T) {
	sys := testSystem(9)
	circ := bench.XEB(sys.Device, 4, 7)
	var jobs []core.BatchJob
	for _, s := range core.Strategies() {
		jobs = append(jobs, core.BatchJob{
			Key: s, Circuit: circ, System: sys, Strategy: s,
		})
	}
	batch, err := core.BatchCollect(compile.NewContext(4), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range core.Strategies() {
		serial, err := core.Compile(circ, sys, s, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sameSchedule(t, s, serial.Schedule, batch[s].Schedule)
		if serial.Report.Success != batch[s].Report.Success {
			t.Fatalf("%s: success %v (serial) vs %v (batch)", s, serial.Report.Success, batch[s].Report.Success)
		}
	}
}

// TestSliceSingleFlightStress checks the engine-level exactly-one-compute
// contract: many workers missing on the same slice key at once must run
// one solve, not one per worker (pre-v2, concurrent misses computed
// redundantly and the last Put won). Meaningful under -race.
func TestSliceSingleFlightStress(t *testing.T) {
	ctx := compile.NewContext(0)
	const goroutines = 24
	const rounds = 50
	for r := 0; r < rounds; r++ {
		key := compile.SliceKey("sig", 2, 2, []int{r, r + 1, r + 7})
		var computes atomic.Int64
		var ready, done sync.WaitGroup
		ready.Add(goroutines)
		done.Add(goroutines)
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			go func() {
				defer done.Done()
				ready.Done()
				<-start
				sol, err := ctx.Slice(key, func() (compile.SliceSolution, error) {
					computes.Add(1)
					time.Sleep(time.Millisecond)
					return compile.SliceSolution{NumColors: r}, nil
				})
				if err != nil || sol.NumColors != r {
					t.Errorf("round %d: Slice = %+v, %v", r, sol, err)
				}
			}()
		}
		ready.Wait()
		close(start)
		done.Wait()
		if n := computes.Load(); n != 1 {
			t.Fatalf("round %d: %d computes for one key, want exactly 1", r, n)
		}
	}
}

// TestWarmStartCompilationIsDeterministic checks the persistence
// counterpart of the determinism contract: a process that loads another
// process's cache snapshot (simulated here by a fresh Context + Load)
// produces byte-identical schedules to an uncached compilation, while
// actually hitting the restored entries.
func TestWarmStartCompilationIsDeterministic(t *testing.T) {
	sys := testSystem(16)
	circ := bench.XEB(sys.Device, 5, 7)
	path := filepath.Join(t.TempDir(), "cache.snap")

	// "Process 1": compile everything, snapshot the cache.
	first := compile.NewContext(1)
	for _, comp := range schedule.Extended() {
		if _, err := comp.Compile(first, circ, sys, schedule.Options{}); err != nil {
			t.Fatalf("%s seed run: %v", comp.Name(), err)
		}
	}
	if err := first.Cache.Save(path); err != nil {
		t.Fatal(err)
	}

	// "Process 2": cold context warmed only from disk.
	warm := compile.NewContext(1)
	n, err := warm.Cache.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("snapshot restored no entries")
	}
	for _, comp := range schedule.Extended() {
		label := comp.Name() + "/warm-start"
		uncached, err := comp.Compile(nil, circ, sys, schedule.Options{})
		if err != nil {
			t.Fatalf("%s uncached: %v", label, err)
		}
		warmed, err := comp.Compile(warm, circ, sys, schedule.Options{})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		sameSchedule(t, label, uncached, warmed)
	}
	st := warm.Cache.TotalStats()
	if st.Hits == 0 {
		t.Fatal("warm start never hit the restored cache")
	}
	for _, region := range []string{compile.RegionSlice, compile.RegionSMT, compile.RegionParking, compile.RegionStatic} {
		rs := warm.Cache.StatsByRegion()[region]
		if rs.Misses != 0 {
			t.Errorf("region %s recomputed %d entries despite warm start", region, rs.Misses)
		}
	}
}

// TestBatchCompileRace exercises the full pipeline concurrently with a
// shared cache; meaningful under -race.
func TestBatchCompileRace(t *testing.T) {
	sys := testSystem(9)
	ctx := compile.NewContext(8)
	var jobs []core.BatchJob
	for i := 0; i < 4; i++ {
		circ := bench.XEB(sys.Device, 3+i, 7)
		for _, s := range core.Strategies() {
			jobs = append(jobs, core.BatchJob{
				Key: s + string(rune('0'+i)), Circuit: circ, System: sys, Strategy: s,
			})
		}
	}
	if _, err := core.BatchCollect(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	if ctx.Cache.TotalStats().Hits == 0 {
		t.Fatal("no cross-job cache sharing observed")
	}
}
