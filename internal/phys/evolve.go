package phys

import "math"

// This file integrates the Schrödinger equation for two capacitively coupled
// three-level transmons, the minimal model behind Fig 2 (interaction
// strength) and Fig 15 (state-transition chevrons). The Hilbert space is
// spanned by |n_A n_B⟩ for n ∈ {0,1,2}, dimension 9, with the exchange
// coupling H_int = g(a†b + ab†).

// TwoTransmonDim is the Hilbert-space dimension of the two-qutrit model.
const TwoTransmonDim = 9

// basisIndex maps occupation numbers (nA, nB) to a state index.
func basisIndex(nA, nB int) int { return 3*nA + nB }

// TwoTransmon is a pair of coupled three-level transmons at fixed operating
// frequencies (already flux-tuned); G is the bare exchange coupling in GHz.
type TwoTransmon struct {
	A, B Transmon
	// PhiA, PhiB are the flux operating points of the two qubits.
	PhiA, PhiB float64
	// G is the bare coupling g₀ in GHz.
	G float64
}

// hamiltonian returns the 9×9 real symmetric Hamiltonian in GHz. Diagonal
// entries are the bare level energies E_A(nA) + E_B(nB); off-diagonal
// entries implement g(a†b + ab†) with bosonic matrix elements.
func (tt TwoTransmon) hamiltonian() [TwoTransmonDim][TwoTransmonDim]float64 {
	var h [TwoTransmonDim][TwoTransmonDim]float64
	for nA := 0; nA <= 2; nA++ {
		for nB := 0; nB <= 2; nB++ {
			i := basisIndex(nA, nB)
			h[i][i] = tt.A.LevelEnergy(nA, tt.PhiA) + tt.B.LevelEnergy(nB, tt.PhiB)
			// a†b: |nA+1, nB-1⟩⟨nA, nB| with element √(nA+1)·√nB.
			if nA+1 <= 2 && nB-1 >= 0 {
				j := basisIndex(nA+1, nB-1)
				el := tt.G * math.Sqrt(float64(nA+1)) * math.Sqrt(float64(nB))
				h[j][i] += el
				h[i][j] += el
			}
		}
	}
	return h
}

// State is a 9-component complex wavefunction over the |nA nB⟩ basis.
type State [TwoTransmonDim]complex128

// BasisState returns the computational basis state |nA nB⟩.
func BasisState(nA, nB int) State {
	var s State
	s[basisIndex(nA, nB)] = 1
	return s
}

// Population returns |⟨nA nB|ψ⟩|².
func (s State) Population(nA, nB int) float64 {
	a := s[basisIndex(nA, nB)]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Norm returns ⟨ψ|ψ⟩.
func (s State) Norm() float64 {
	n := 0.0
	for _, a := range s {
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return n
}

// Evolve integrates iψ' = 2π·H·ψ for duration t ns with an RK4 integrator
// (fixed step dt ns) and returns the final state. dt must resolve the
// largest level splitting; dt = 0.002 ns is ample for ~7 GHz transmons.
func (tt TwoTransmon) Evolve(initial State, t, dt float64) State {
	h := tt.hamiltonian()
	// Work in a frame rotating nothing; plain lab frame is fine for RK4
	// with a small step. deriv computes dψ/dt = −i·2π·H·ψ.
	deriv := func(s State) State {
		var d State
		for i := 0; i < TwoTransmonDim; i++ {
			var acc complex128
			for j := 0; j < TwoTransmonDim; j++ {
				if h[i][j] != 0 {
					acc += complex(h[i][j], 0) * s[j]
				}
			}
			d[i] = complex(0, -TwoPi) * acc
		}
		return d
	}
	steps := int(math.Ceil(t / dt))
	if steps < 1 {
		steps = 1
	}
	step := t / float64(steps)
	s := initial
	for n := 0; n < steps; n++ {
		k1 := deriv(s)
		k2 := deriv(axpy(s, k1, step/2))
		k3 := deriv(axpy(s, k2, step/2))
		k4 := deriv(axpy(s, k3, step))
		for i := range s {
			s[i] += complex(step/6, 0) * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
	}
	return s
}

func axpy(s, d State, h float64) State {
	var out State
	for i := range s {
		out[i] = s[i] + complex(h, 0)*d[i]
	}
	return out
}

// EvolveExact evolves the state for t ns by eigendecomposition of the
// Hamiltonian: ψ(t) = V·exp(−i·2π·Λ·t)·Vᵀ·ψ(0). Unlike the RK4 integrator
// this is unitary to machine precision and O(1) in t, so it is the preferred
// path for chevron scans.
func (tt TwoTransmon) EvolveExact(initial State, t float64) State {
	h := tt.hamiltonian()
	hs := make([][]float64, TwoTransmonDim)
	for i := range hs {
		hs[i] = h[i][:]
	}
	lambda, v := jacobiEigen(hs)
	// c_k = Σ_i v[i][k]·ψ_i ; ψ_j(t) = Σ_k v[j][k]·e^{−i2πλ_k t}·c_k.
	var out State
	for k := 0; k < TwoTransmonDim; k++ {
		var c complex128
		for i := 0; i < TwoTransmonDim; i++ {
			c += complex(v[i][k], 0) * initial[i]
		}
		phase := -TwoPi * lambda[k] * t
		rot := complex(math.Cos(phase), math.Sin(phase)) * c
		for j := 0; j < TwoTransmonDim; j++ {
			out[j] += complex(v[j][k], 0) * rot
		}
	}
	return out
}

// SwapTransfer returns the probability of the |01⟩→|10⟩ transfer after time
// t at the current operating point (the left panel of Fig 15 is this
// quantity swept over flux and time). Computed by exact diagonalization.
func (tt TwoTransmon) SwapTransfer(t float64) float64 {
	final := tt.EvolveExact(BasisState(0, 1), t)
	return final.Population(1, 0)
}

// LeakTransfer returns the probability of the |11⟩→|20⟩ transfer after time
// t (the right panel of Fig 15; this is the CZ channel).
func (tt TwoTransmon) LeakTransfer(t float64) float64 {
	final := tt.EvolveExact(BasisState(1, 1), t)
	return final.Population(2, 0)
}

// MinimumGap scans the detuning between the dressed single-excitation
// eigenstates as ωA is swept (by flux) across ωB and returns half the
// minimum splitting — the numerically extracted interaction strength that
// Fig 2 plots. It diagonalizes the 2×2 single-excitation block exactly.
func (tt TwoTransmon) MinimumGap() float64 {
	// Single-excitation block over {|10⟩, |01⟩}:
	//   [ ωA   g  ]
	//   [ g    ωB ]
	// splitting = √((ωA−ωB)² + 4g²), minimized on resonance at 2g.
	wa := tt.A.Freq01(tt.PhiA)
	wb := tt.B.Freq01(tt.PhiB)
	d := wa - wb
	return math.Sqrt(d*d+4*tt.G*tt.G) / 2
}
