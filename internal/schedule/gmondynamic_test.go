package schedule

import (
	"testing"

	"fastsc/internal/bench"
)

func TestGmonDynamicCompiles(t *testing.T) {
	sys := testSystem(16)
	c := bench.XEB(sys.Device, 5, 3)
	s, err := (GmonDynamic{}).Compile(nil, c, sys, Options{Residual: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if !s.Gmon {
		t.Fatal("GmonDynamic must mark the schedule as gmon")
	}
	if s.Residual != 0.5 {
		t.Fatalf("residual = %v", s.Residual)
	}
	if s.Strategy != "ColorDynamic-G" {
		t.Fatalf("strategy label = %q", s.Strategy)
	}
}

func TestGmonDynamicSchedulesLikeColorDynamic(t *testing.T) {
	// Same coloring machinery: identical slice structure, only the coupler
	// model differs.
	sys := testSystem(16)
	c := bench.XEB(sys.Device, 5, 3)
	cd, err := (ColorDynamic{}).Compile(nil, c, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cdg, err := (GmonDynamic{}).Compile(nil, c, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cd.Depth() != cdg.Depth() {
		t.Fatalf("depths differ: %d vs %d", cd.Depth(), cdg.Depth())
	}
	if cd.Gmon || !cdg.Gmon {
		t.Fatal("gmon flags wrong")
	}
}

func TestExtendedRegistry(t *testing.T) {
	if len(Extended()) != len(Registry())+1 {
		t.Fatalf("extended registry size %d", len(Extended()))
	}
	if ByName("ColorDynamic-G") == nil {
		t.Fatal("ColorDynamic-G not resolvable by name")
	}
	// The Table I registry must stay at exactly five strategies.
	if len(Registry()) != 5 {
		t.Fatalf("registry has %d strategies", len(Registry()))
	}
}
